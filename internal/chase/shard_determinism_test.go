package chase

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/gen/graphs"
	"repro/internal/parser"
	"repro/internal/term"
)

func runSharded(t *testing.T, src string, facts []ast.Fact, workers, shards int) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(context.Background(), prog, facts, Options{Parallelism: workers, Shards: shards})
	if err != nil {
		t.Fatalf("run (workers=%d shards=%d): %v", workers, shards, err)
	}
	return res
}

// TestShardMatrixByteDeterminism is the acceptance property of
// partitioned admission: for every scenario, every worker count × shard
// count combination produces a final database byte-identical to the
// serial unsharded run — same facts, same admission order, same null
// identities, same derivation count.
func TestShardMatrixByteDeterminism(t *testing.T) {
	for _, sc := range parallelScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := dbBytes(runSharded(t, sc.src, sc.facts, 1, 1))
			if len(base) < 40 {
				t.Fatalf("vacuous database: %q", base)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, shards := range []int{1, 2, 8} {
					if workers == 1 && shards == 1 {
						continue
					}
					got := dbBytes(runSharded(t, sc.src, sc.facts, workers, shards))
					if got != base {
						t.Errorf("workers=%d shards=%d diverges from serial unsharded (%d vs %d bytes)",
							workers, shards, len(got), len(base))
					}
				}
			}
		})
	}
}

// TestShardCancelResumeDeterminism: a run cancelled mid-batch and resumed
// must converge to the same bytes regardless of the shard count — the
// requeue boundary and the partitioned merge may not interact. The
// cancellation point is deterministic (stepCtx counts Err polls and the
// pre-pass never polls), so runs differing only in shard count cancel at
// the same place.
func TestShardCancelResumeDeterminism(t *testing.T) {
	ownership := graphs.ScaleFree(100, graphs.PaperParams(), 5)
	prog := parser.MustParse(graphs.ControlProgram)
	clean := runSharded(t, graphs.ControlProgram, ownership.OwnFacts(), 4, 1)
	want := sortedGround(clean, "control")
	if want == "" {
		t.Fatal("vacuous scenario")
	}
	for _, after := range []int64{1, 3, 25} {
		var base string
		for _, shards := range []int{1, 2, 8} {
			c, err := Compile(prog, Options{Parallelism: 4, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			e := c.NewEngine()
			_, err = e.Run(&stepCtx{Context: context.Background(), after: after}, ownership.OwnFacts())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("after=%d shards=%d: want cancellation, got %v", after, shards, err)
			}
			res, err := e.Run(context.Background(), nil)
			if err != nil {
				t.Fatalf("after=%d shards=%d: resume: %v", after, shards, err)
			}
			if got := sortedGround(res, "control"); got != want {
				t.Errorf("after=%d shards=%d: resumed run lost derivations", after, shards)
			}
			bytes := dbBytes(res)
			if base == "" {
				base = bytes
			} else if bytes != base {
				t.Errorf("after=%d shards=%d: resumed database diverges across shard counts (%d vs %d bytes)",
					after, shards, len(bytes), len(base))
			}
		}
	}
}

// TestShardOptionsResolution: the shard count rounds to a power of two,
// defaults off explicit zero to the worker heuristic, and reaches the
// database's relations.
func TestShardOptionsResolution(t *testing.T) {
	prog := parser.MustParse(`p(X) -> q(X). @output("q").`)
	for _, tc := range []struct{ opt, want int }{
		{1, 1}, {2, 2}, {5, 8}, {8, 8}, {300, 256},
	} {
		c, err := Compile(prog, Options{Shards: tc.opt})
		if err != nil {
			t.Fatal(err)
		}
		e := c.NewEngine()
		if e.Shards() != tc.want {
			t.Errorf("Shards=%d: resolved %d, want %d", tc.opt, e.Shards(), tc.want)
		}
		if e.DB().Shards() != tc.want {
			t.Errorf("Shards=%d: database has %d, want %d", tc.opt, e.DB().Shards(), tc.want)
		}
	}
	c, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NewEngine().Shards(); got < 1 || got > 8 {
		t.Errorf("default shards %d outside [1, 8]", got)
	}
}

// TestShardPhaseStats: the engine accounts wall time to the match and
// admit phases, and per-shard meter counters cover the admitted facts of
// prepared rules when the pre-pass fans out.
func TestShardPhaseStats(t *testing.T) {
	ownership := graphs.ScaleFree(1200, graphs.PaperParams(), 2)
	prog := parser.MustParse(graphs.ControlProgram)
	c, err := Compile(prog, Options{Parallelism: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := c.NewEngine()
	if _, err := e.Run(context.Background(), ownership.OwnFacts()); err != nil {
		t.Fatal(err)
	}
	match, _, admit := e.PhaseStats()
	if match <= 0 || admit <= 0 {
		t.Errorf("phase stats not accumulated: match=%v admit=%v", match, admit)
	}
	scans, _, admits := e.Meter().ShardStats()
	var totScan, totAdmit int64
	for s := range scans {
		totScan += scans[s]
		totAdmit += admits[s]
	}
	if totScan <= 0 {
		t.Error("pre-pass never fanned out (no shard scans recorded)")
	}
	if totAdmit <= 0 {
		t.Error("no sharded admissions recorded")
	}
	if totAdmit > int64(e.Derivations()) {
		t.Errorf("sharded admissions %d exceed derivations %d", totAdmit, e.Derivations())
	}
}

// TestShardDeterminismEGDDisabled: a program with an EGD disables head
// preparation program-wide (EGD unification mutates the null substitution
// during admission); reasoning must stay byte-identical across shard
// counts anyway, via the classic path.
func TestShardDeterminismEGDDisabled(t *testing.T) {
	src := `
		person(X) -> hasID(X, I).
		hasID(X, I1), hasID(X, I2) -> I1 = I2.
		hasID(X, I) -> idOf(X, I).
		@output("idOf").
	`
	var facts []ast.Fact
	for i := 0; i < 40; i++ {
		facts = append(facts, ast.NewFact("person", term.String(fmt.Sprintf("p%02d", i))))
	}
	base := dbBytes(runSharded(t, src, facts, 1, 1))
	for _, shards := range []int{2, 8} {
		if got := dbBytes(runSharded(t, src, facts, 4, shards)); got != base {
			t.Errorf("shards=%d diverges on EGD program", shards)
		}
	}
}
