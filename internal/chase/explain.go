package chase

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/planner"
)

// Explain renders the access plan annotated, per rule and per delta-pinned
// body atom, with the join order the cost-based planner chooses and the
// estimates that drove it — against the statistics frozen at the last
// epoch boundary, so explaining after Run shows the orders the fixpoint
// converged on. Firings whose positive body is shared with other rules
// (CSE) carry the group size; rules with Skolem body assignments are
// evaluated inline on their static schedules and carry no annotation.
// With the planner disabled, Explain renders the plain plan.
func (e *Engine) Explain() string {
	preds, err := e.c.prog.Predicates()
	if err != nil {
		preds = nil
	}
	var annotate func(ri int, cr *eval.CompiledRule) []string
	if e.pl != nil {
		annotate = func(ri int, cr *eval.CompiledRule) []string {
			if !e.c.parSafe[ri] {
				return []string{"static schedule (inline rule)"}
			}
			lines := make([]string, 0, len(cr.Pos))
			for pi := range cr.Pos {
				line := e.pl.Describe(cr, pi)
				if g, ok := e.c.groupOf[[2]int{ri, pi}]; ok {
					line += fmt.Sprintf(" [shared body ×%d]", len(e.c.groups[g].members))
				}
				lines = append(lines, line)
			}
			return lines
		}
	}
	return planner.RenderPlan(e.c.prog, preds, e.c.rules, annotate)
}
