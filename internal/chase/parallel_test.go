package chase

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ast"
	"repro/internal/gen/dbpedia"
	"repro/internal/gen/graphs"
	"repro/internal/gen/iwarded"
	"repro/internal/parser"
	"repro/internal/term"
)

// dbBytes renders the full final database byte-exactly: every predicate in
// sorted order, every stored row in insertion order (retracted rows
// included, marked), nulls with their identities. Two runs agree on this
// string iff they admitted the same facts in the same order — the
// determinism contract of the parallel chase.
func dbBytes(res *Result) string {
	var sb strings.Builder
	for _, pred := range res.DB.Predicates() {
		rel := res.DB.Lookup(pred)
		fmt.Fprintf(&sb, "%s[%d]\n", pred, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			m := rel.At(i)
			if m.Retracted {
				sb.WriteString("  x ")
			} else {
				sb.WriteString("    ")
			}
			sb.WriteString(m.Fact.String())
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "derivations=%d nulls=%d\n", res.Derivations, res.DB.Nulls.Count())
	return sb.String()
}

func runParallel(t *testing.T, src string, facts []ast.Fact, workers int) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(context.Background(), prog, facts, Options{Parallelism: workers})
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return res
}

// parallelScenarios mirrors the examples/ scenarios (plus a rule-heavy
// iWarded instance): every workload class the repository ships — plain
// recursion, existentials, harmful joins, monotonic aggregation over
// floats and sets, EGD-free ontologies.
func parallelScenarios(t *testing.T) []struct {
	name  string
	src   string
	facts []ast.Fact
} {
	t.Helper()
	ownership := graphs.ScaleFree(120, graphs.PaperParams(), 1)
	persons := dbpedia.Generate(dbpedia.Config{Companies: 60, Persons: 180,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	quickstart := `
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`
	quickFacts := []ast.Fact{
		ast.NewFact("company", term.String("acme")),
		ast.NewFact("company", term.String("subco")),
		ast.NewFact("control", term.String("acme"), term.String("subco")),
		ast.NewFact("keyPerson", term.String("ada"), term.String("acme")),
	}
	cfg, ok := iwarded.Scenario("synthA")
	if !ok {
		t.Fatal("synthA scenario missing")
	}
	cfg.FactsPerRel = 30
	g, err := iwarded.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name  string
		src   string
		facts []ast.Fact
	}{
		{"quickstart", quickstart, quickFacts},
		{"companycontrol", graphs.ControlProgram, ownership.OwnFacts()},
		{"psc", dbpedia.PSCProgram, persons.All()},
		{"allpsc", dbpedia.AllPSCProgram, persons.All()},
		{"stronglinks", dbpedia.StrongLinksProgram(3), persons.All()},
		{"iwarded-synthA", g.Source, g.Facts},
	}
}

// TestParallelByteDeterminism is the acceptance property of the parallel
// chase: for every scenario, Parallelism ∈ {1, 2, 8} produce byte-identical
// final databases — same facts, same admission order, same null
// identities, same derivation count.
func TestParallelByteDeterminism(t *testing.T) {
	for _, sc := range parallelScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := dbBytes(runParallel(t, sc.src, sc.facts, 1))
			if !strings.Contains(base, "derivations=") || len(base) < 40 {
				t.Fatalf("vacuous database: %q", base)
			}
			for _, workers := range []int{2, 8} {
				got := dbBytes(runParallel(t, sc.src, sc.facts, workers))
				if got != base {
					t.Errorf("workers=%d diverges from workers=1 (%d vs %d bytes)",
						workers, len(got), len(base))
				}
			}
		})
	}
}

// TestParallelShuffledAggregateDeterminism stresses the serial-admit
// guarantee under adversarial admission orders: for each shuffled EDB
// order of the AllPSC/munion scenario, every worker count yields the same
// bytes as workers=1 on that order, and all orders agree on the final
// (sorted) ground answers.
func TestParallelShuffledAggregateDeterminism(t *testing.T) {
	persons := dbpedia.Generate(dbpedia.Config{Companies: 30, Persons: 90,
		KeyPersonRate: 1.4, ControlRate: 0.5, Seed: 11})
	facts := persons.All()
	var groundBase string
	for seed := int64(1); seed <= 3; seed++ {
		order := append([]ast.Fact(nil), facts...)
		rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		res1 := runParallel(t, dbpedia.AllPSCProgram, order, 1)
		base := dbBytes(res1)
		for _, workers := range []int{2, 8} {
			if got := dbBytes(runParallel(t, dbpedia.AllPSCProgram, order, workers)); got != base {
				t.Errorf("seed %d: workers=%d diverges from workers=1", seed, workers)
			}
		}
		ground := sortedGround(res1, "pscSet")
		if groundBase == "" {
			groundBase = ground
		} else if ground != groundBase {
			t.Errorf("seed %d: final aggregates depend on admission order", seed)
		}
	}
	if groundBase == "" {
		t.Fatal("no ground answers (vacuous)")
	}
}

func sortedGround(res *Result, pred string) string {
	var lines []string
	for _, f := range res.Output(pred) {
		if f.IsGround() {
			lines = append(lines, f.String())
		}
	}
	sortStrings(lines)
	return strings.Join(lines, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestParallelConcurrentEngines runs several parallel engines (each with
// its own worker pool) concurrently over one shared Compiled — the serving
// topology — and checks all sessions agree. Run under -race this covers
// the frozen-epoch probes, the shared compiled artifact and the atomic
// meter.
func TestParallelConcurrentEngines(t *testing.T) {
	ownership := graphs.ScaleFree(80, graphs.PaperParams(), 3)
	prog := parser.MustParse(graphs.ControlProgram)
	c, err := Compile(prog, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	out := make([]string, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for k := 0; k < sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			res, err := c.NewEngine().Run(context.Background(), ownership.OwnFacts())
			if err != nil {
				errs[k] = err
				return
			}
			out[k] = dbBytes(res)
		}(k)
	}
	wg.Wait()
	for k := 0; k < sessions; k++ {
		if errs[k] != nil {
			t.Fatalf("session %d: %v", k, errs[k])
		}
		if out[k] != out[0] {
			t.Errorf("session %d diverges from session 0", k)
		}
	}
}

// TestParallelBudgetExceeded: the derivation budget still trips under the
// batched scheduler, whatever the worker count.
func TestParallelBudgetExceeded(t *testing.T) {
	prog := parser.MustParse("a(X), a(Y) -> pair(X,Y).")
	var edb []ast.Fact
	for i := 0; i < 100; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	for _, workers := range []int{1, 8} {
		_, err := Run(context.Background(), prog, edb, Options{MaxDerivations: 50, Parallelism: workers})
		if !errors.Is(err, ErrBudget) {
			t.Errorf("workers=%d: want ErrBudget, got %v", workers, err)
		}
	}
}

// TestParallelCancellation: cancelling mid-run aborts between batches with
// all worker goroutines joined.
func TestParallelCancellation(t *testing.T) {
	prog := parser.MustParse("a(X), a(Y) -> pair(X,Y).")
	var edb []ast.Fact
	for i := 0; i < 200; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, prog, edb, Options{Parallelism: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestParallelSkolemBodyAssignments pins the serial-path routing: rules
// whose bodies mint Skolem nulls while matching are not parallel-safe and
// must still produce deterministic, worker-count-independent results.
func TestParallelSkolemBodyAssignments(t *testing.T) {
	src := `
		p(X), Z = #f(X) -> q(X, Z).
		q(X, Z), p(Y), W = #g(Z, Y) -> r(X, Y, W).
	`
	var edb []ast.Fact
	for i := 0; i < 12; i++ {
		edb = append(edb, ast.NewFact("p", term.Int(int64(i))))
	}
	base := dbBytes(runParallel(t, src, edb, 1))
	for _, workers := range []int{2, 8} {
		if got := dbBytes(runParallel(t, src, edb, workers)); got != base {
			t.Errorf("workers=%d diverges on skolem-body program", workers)
		}
	}
	if !strings.Contains(base, "r[") {
		t.Fatalf("skolem chain produced no r facts:\n%s", base)
	}
}

// TestTightBudgetDuplicateHeavyBatch: candidate buffering is a runaway
// backstop, never a budget check — a duplicate-heavy program that admits
// few facts must complete under a tight MaxDerivations even though its
// batches enumerate far more candidate matches than the budget.
func TestTightBudgetDuplicateHeavyBatch(t *testing.T) {
	// Every (a, a) pair matches, but all firings emit the same single
	// fact: thousands of candidates, one admission.
	prog := parser.MustParse("a(X), a(Y) -> one(\"yes\").")
	var edb []ast.Fact
	for i := 0; i < 60; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	for _, workers := range []int{1, 8} {
		res, err := Run(context.Background(), prog, edb, Options{MaxDerivations: 61, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := len(res.Output("one")); got != 1 {
			t.Errorf("workers=%d: %d facts, want 1", workers, got)
		}
	}
}

// stepCtx is a context whose Err starts reporting Canceled after the
// n-th poll — a deterministic way to cancel mid-run. Err must be
// goroutine-safe like any real context's (match workers poll it).
type stepCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *stepCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancelResumeLosesNoDeltas: cancelling mid-batch must not drop the
// in-flight deltas — a resumed Run picks the batch back up and quiesces
// with exactly the ground answers of an uninterrupted run.
func TestCancelResumeLosesNoDeltas(t *testing.T) {
	ownership := graphs.ScaleFree(100, graphs.PaperParams(), 5)
	prog := parser.MustParse(graphs.ControlProgram)
	clean := runParallel(t, graphs.ControlProgram, ownership.OwnFacts(), 4)
	want := sortedGround(clean, "control")
	if want == "" {
		t.Fatal("vacuous scenario")
	}
	for _, after := range []int64{1, 3, 25} {
		c, err := Compile(prog, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		e := c.NewEngine()
		_, err = e.Run(&stepCtx{Context: context.Background(), after: after}, ownership.OwnFacts())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: want cancellation, got %v", after, err)
		}
		res, err := e.Run(context.Background(), nil)
		if err != nil {
			t.Fatalf("after=%d: resume: %v", after, err)
		}
		if got := sortedGround(res, "control"); got != want {
			t.Errorf("after=%d: resumed run lost derivations (%d vs %d bytes)",
				after, len(got), len(want))
		}
	}
}
