// Command vada is the Vadalog command-line interface: it checks and runs
// Vadalog programs end to end (storage to storage via the @bind/@qbind
// record managers — csv, tsv, jsonl, mem and any registered driver — or
// printing outputs to stdout).
//
// Usage:
//
//	vada check program.vada           static wardedness analysis
//	vada vet [-strict] [-q] [-json] targets
//	                                  positioned lint diagnostics over
//	                                  .vada files, dirs or dir/... trees
//	                                  (file:line:col: CODE: message, or
//	                                  JSON Lines with -json)
//	vada run [flags] program.vada     run the reasoning task
//
// Run flags:
//
//	-engine pipeline|chase     execution engine (default pipeline)
//	-policy full|nosummary|trivial|restricted|skolem
//	-max N                     derivation budget
//	-timeout D                 wall-clock bound (e.g. 30s); on expiry the
//	                           partial result derived so far is printed
//	                           and vada exits 4
//	-parallel N                chase match workers (0 = GOMAXPROCS,
//	                           1 = single-threaded; results are identical)
//	-shards N                  duplicate-table shards for the parallel
//	                           admission pre-pass (0 = engine default;
//	                           results are identical)
//	-noplan                    disable the cost-based join planner
//	                           (static schedules; results are identical)
//	-explain                   after the run, print the access plan with
//	                           the chosen join orders and their estimates
//	                           to stderr
//	-phases                    after the run, print the match/pre-pass/
//	                           admit wall-time split to stderr
//	-facts pred=file.csv       extra CSV input (repeatable)
//	-bind pred=driver:target   override (or add) a predicate's binding
//	                           without editing the program (repeatable),
//	                           e.g. -bind own=tsv:/data/own.tsv
//	-print pred                print a predicate's facts (repeatable;
//	                           default: all @output predicates)
//
// Run exit codes (also in vada run -h): 0 success; 1 error (parse,
// compile, inconsistency, rule failure); 2 usage; 3 cancelled
// (interrupt); 4 resource bound hit (derivation budget or -timeout;
// partial result printed); 5 transient source failure persisting after
// the configured retries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	iofs "io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/vadalog"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		cmdCheck(os.Args[2:])
	case "vet":
		cmdVet(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vada check <program> | vada vet [-strict] [-json] <files/dirs...> | vada plan <program> | vada run [flags] <program>")
	os.Exit(2)
}

// cmdVet lints Vadalog programs and prints positioned diagnostics in the
// go-vet-style "file:line:col: CODE: message" form, or with -json as
// JSON Lines (one object per diagnostic with the stable fields file,
// line, col, code, severity, message, related). Arguments are .vada
// files, directories, or go-style "dir/..." patterns (searched
// recursively for *.vada). Files that fail to parse surface as E001
// errors. Exit status: 0 when no diagnostic reaches Error severity
// (Warning with -strict), 1 otherwise, 2 on usage or I/O errors.
func cmdVet(args []string) {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	strict := fs.Bool("strict", false, "fail on warnings, not just errors")
	quiet := fs.Bool("q", false, "suppress info diagnostics")
	asJSON := fs.Bool("json", false, "print diagnostics as JSON Lines")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	files, err := expandVetTargets(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vada: vet:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "vada: vet: no .vada files found")
		os.Exit(2)
	}
	failSev := vadalog.SeverityError
	if *strict {
		failSev = vadalog.SeverityWarning
	}
	exit := 0
	for _, file := range files {
		var diags []lint.Diagnostic
		prog, err := vadalog.ParseFile(file)
		if err != nil {
			diags = []lint.Diagnostic{syntaxDiagnostic(file, err)}
		} else {
			diags = vadalog.Lint(prog, file)
		}
		for _, d := range diags {
			if *quiet && d.Severity == vadalog.SeverityInfo {
				continue
			}
			if *asJSON {
				if err := lint.WriteJSON(os.Stdout, []lint.Diagnostic{d}); err != nil {
					fmt.Fprintln(os.Stderr, "vada: vet:", err)
					os.Exit(2)
				}
			} else {
				fmt.Println(d)
			}
			if d.Severity >= failSev {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// syntaxDiagnostic converts a parse failure into the E001 diagnostic, so
// unparsable files flow through the same (JSON) rendering as lint
// findings. Parser errors carry their position; other errors (I/O) are
// attributed to the file at 0:0.
func syntaxDiagnostic(file string, err error) lint.Diagnostic {
	d := lint.Diagnostic{
		Code:     "E001",
		Severity: lint.Error,
		Pos:      lint.Pos{File: file},
		Message:  err.Error(),
	}
	var pe *parser.Error
	if errors.As(err, &pe) {
		d.Pos = lint.Pos{File: file, Line: pe.Line, Col: pe.Col}
		d.Message = pe.Msg
	}
	return d
}

// expandVetTargets resolves vet arguments to .vada files: files are taken
// as-is, directories are searched (recursively for go-style "/..."
// suffixes) for *.vada.
func expandVetTargets(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "...") {
			recursive = true
			arg = strings.TrimSuffix(arg, "...")
			arg = strings.TrimSuffix(arg, string(filepath.Separator))
			if arg == "" {
				arg = "."
			}
		}
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		if recursive {
			err = filepath.WalkDir(arg, func(path string, d iofs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && filepath.Ext(path) == ".vada" {
					files = append(files, path)
				}
				return nil
			})
		} else {
			var entries []iofs.DirEntry
			entries, err = os.ReadDir(arg)
			for _, e := range entries {
				if !e.IsDir() && filepath.Ext(e.Name()) == ".vada" {
					files = append(files, filepath.Join(arg, e.Name()))
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog := loadProgram(fs.Arg(0))
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		fatal(err)
	}
	plan, err := reasoner.Plan()
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan)
}

func loadProgram(path string) *vadalog.Program {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := vadalog.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vada:", err)
	os.Exit(1)
}

func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog := loadProgram(fs.Arg(0))
	rep := vadalog.Check(prog)
	fmt.Print(rep)
	if !rep.Warded {
		os.Exit(1)
	}
}

// overrideBinding rewrites (or adds) the program binding of one
// predicate from a "pred=driver:target" flag value, so a program can be
// pointed at a different file, format or driver from the command line.
// A @qbind'ed predicate keeps its query.
func overrideBinding(prog *vadalog.Program, spec string) error {
	pred, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -bind %q (want pred=driver:target)", spec)
	}
	driver, target, ok := strings.Cut(rest, ":")
	if !ok || driver == "" || target == "" {
		return fmt.Errorf("bad -bind %q (want pred=driver:target)", spec)
	}
	for i := range prog.Bindings {
		if prog.Bindings[i].Pred == pred {
			prog.Bindings[i].Driver = driver
			prog.Bindings[i].Target = target
			return nil
		}
	}
	prog.Bindings = append(prog.Bindings, ast.Binding{Pred: pred, Driver: driver, Target: target})
	return nil
}

// exitRunError maps a RunContext failure to the documented exit codes:
// a PartialResult (budget or -timeout) prints the facts derived so far
// and exits 4, interrupt exits 3, a transient source failure that
// outlived its retries exits 5, and anything else is a plain error (1).
func exitRunError(err error, preds []string) {
	var pr *vadalog.PartialResult
	switch {
	case errors.As(err, &pr):
		for _, pred := range preds {
			for _, f := range pr.Output(pred) {
				fmt.Println(f)
			}
		}
		fmt.Fprintf(os.Stderr, "vada: partial result: %d facts derived, quiesced=%v: %v\n",
			pr.Derivations(), pr.Quiesced(), pr.Reason)
		os.Exit(4)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "vada: cancelled:", err)
		os.Exit(3)
	case vadalog.IsTransient(err):
		fmt.Fprintln(os.Stderr, "vada: transient source failure persisted after retries:", err)
		os.Exit(5)
	default:
		fatal(err)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	engine := fs.String("engine", "pipeline", "pipeline|chase")
	policy := fs.String("policy", "full", "full|nosummary|trivial|restricted|skolem")
	maxDer := fs.Int("max", 0, "derivation budget (0 = default)")
	timeout := fs.Duration("timeout", 0, "wall-clock bound; on expiry print the partial result and exit 4 (0 = none)")
	parallel := fs.Int("parallel", 0, "chase match workers (0 = GOMAXPROCS, 1 = single-threaded)")
	shards := fs.Int("shards", 0, "duplicate-table shards for the parallel admission pre-pass (0 = engine default; results are identical)")
	noplan := fs.Bool("noplan", false, "disable the cost-based join planner")
	explain := fs.Bool("explain", false, "print the access plan with chosen join orders after the run")
	phases := fs.Bool("phases", false, "print the match/pre-pass/admit wall-time split after the run")
	var extraFacts, printPreds, bindOverrides multiFlag
	fs.Var(&extraFacts, "facts", "pred=file.csv extra input (repeatable)")
	fs.Var(&printPreds, "print", "predicate to print (repeatable)")
	fs.Var(&bindOverrides, "bind", "pred=driver:target binding override (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: vada run [flags] <program.vada>")
		fs.PrintDefaults()
		fmt.Fprint(fs.Output(), `
exit codes:
  0  success
  1  error (parse, compile, inconsistency, rule failure)
  2  usage
  3  cancelled (interrupt signal)
  4  resource bound hit (-max derivation budget or -timeout);
     the partial result derived so far is printed first
  5  transient source failure persisting after the configured retries
`)
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog := loadProgram(fs.Arg(0))
	for _, spec := range bindOverrides {
		if err := overrideBinding(prog, spec); err != nil {
			fatal(err)
		}
	}

	opts := &vadalog.Options{MaxDerivations: *maxDer, Parallelism: *parallel,
		Shards: *shards, PhaseTiming: *phases, DisablePlanner: *noplan}
	switch *engine {
	case "pipeline":
		opts.Engine = vadalog.EnginePipeline
	case "chase":
		opts.Engine = vadalog.EngineChase
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	switch *policy {
	case "full":
		opts.Policy = vadalog.PolicyFull
	case "nosummary":
		opts.Policy = vadalog.PolicyNoSummary
	case "trivial":
		opts.Policy = vadalog.PolicyTrivialIso
	case "restricted":
		opts.Policy = vadalog.PolicyRestricted
	case "skolem":
		opts.Policy = vadalog.PolicySkolem
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	// Compile once, then run: the compiled Reasoner is the reusable
	// artifact (a server would keep it and call Query per request).
	reasoner, err := vadalog.Compile(prog, opts)
	if err != nil {
		fatal(err)
	}
	var facts []vadalog.Fact
	for _, spec := range extraFacts {
		pred, file, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -facts %q (want pred=file.csv)", spec))
		}
		fs, err := vadalog.ReadCSV(pred, file)
		if err != nil {
			fatal(err)
		}
		facts = append(facts, fs...)
	}
	preds := []string(printPreds)
	if len(preds) == 0 {
		for p := range prog.Outputs {
			preds = append(preds, p)
		}
	}
	sort.Strings(preds)
	// Ctrl-C cancels the reasoning fixpoint instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Drive a session directly (rather than Query) so -explain can render
	// the plans against the statistics the run actually converged on.
	sess := reasoner.NewSession()
	sess.Load(facts...)
	if err := sess.RunContext(ctx); err != nil {
		exitRunError(err, preds)
	}
	res, err := sess.Result()
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Fprint(os.Stderr, sess.Explain())
	}
	if *phases {
		match, prepass, admit := sess.PhaseStats()
		fmt.Fprintf(os.Stderr, "vada: phases: match %v, prepass %v, admit %v (%d shards)\n",
			match, prepass, admit, sess.Shards())
	}

	for _, pred := range preds {
		for _, f := range res.Output(pred) {
			fmt.Println(f)
		}
	}
	fmt.Fprintf(os.Stderr, "vada: %d facts derived\n", res.Derivations())
	if st, ok := res.StrategyStats(); ok {
		fmt.Fprintf(os.Stderr, "vada: strategy: %d checks, %d iso, %d stop-cut, %d patterns\n",
			st.Checked, st.IsoChecks, st.BeyondStop, st.Patterns)
	}
}
