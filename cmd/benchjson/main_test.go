package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScalingMatrix/graphs/w=1/s=1         	       3	  11551267 ns/op	      2168 derived-facts	 5215560 B/op	   51370 allocs/op
BenchmarkScalingMatrix/graphs/w=4/s=8-4       	       3	  10133282 ns/op	      2168 derived-facts	 5330504 B/op	   52062 allocs/op
PASS
ok  	repro	0.040s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results: %d", len(rep.Results))
	}
	r0 := rep.Results[0]
	if r0.Name != "ScalingMatrix/graphs/w=1/s=1" || r0.Procs != 1 || r0.Iterations != 3 {
		t.Errorf("r0: %+v", r0)
	}
	if r0.Metrics["ns/op"] != 11551267 || r0.Metrics["allocs/op"] != 51370 ||
		r0.Metrics["B/op"] != 5215560 || r0.Metrics["derived-facts"] != 2168 {
		t.Errorf("r0 metrics: %v", r0.Metrics)
	}
	r1 := rep.Results[1]
	if r1.Name != "ScalingMatrix/graphs/w=4/s=8" || r1.Procs != 4 {
		t.Errorf("r1: %+v", r1)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\n"))); err == nil {
		t.Error("short line accepted")
	}
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX-4 ten 1 ns/op\n"))); err == nil {
		t.Error("non-numeric iteration count accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"X/sub-8", "X/sub", 8},
		{"X/s=1", "X/s=1", 1}, // =1 is part of the axis name, not a procs suffix
		{"X/w-2/s-4", "X/w-2/s", 4},
		{"Plain", "Plain", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
