// Command benchjson converts `go test -bench` text output into a JSON
// record suitable for committing next to the code it measures (the
// BENCH_*.json files at the repo root). It reads the benchmark output on
// stdin and writes one JSON document on stdout:
//
//	go test -run '^$' -bench ScalingMatrix -benchmem . | benchjson > BENCH_pr10.json
//
// Each benchmark line becomes an entry keyed by its full sub-benchmark
// path with the trailing -GOMAXPROCS suffix split into a "procs" field,
// so axes encoded in sub-benchmark names (w=4/s=8, -cpu 1,4 runs) stay
// queryable. All measurements — the standard ns/op, B/op, allocs/op and
// any custom b.ReportMetric units — land in a flat "metrics" map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos    string            `json:"goos,omitempty"`
	Goarch  string            `json:"goarch,omitempty"`
	Pkg     string            `json:"pkg,omitempty"`
	CPU     string            `json:"cpu,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Benchmark       `json:"results"`
}

func main() {
	envKeys := flag.String("env", "REPRO_BENCH_SCALE,GOMAXPROCS",
		"comma-separated environment variables to record when set")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, k := range strings.Split(*envKeys, ",") {
		if v := os.Getenv(strings.TrimSpace(k)); v != "" {
			if rep.Env == nil {
				rep.Env = map[string]string{}
			}
			rep.Env[strings.TrimSpace(k)] = v
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{Results: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, b)
		}
	}
	return rep, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkX/sub-4   10   123 ns/op   45 B/op   6 allocs/op   7.0 widgets
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line: %q", line)
	}
	b := Benchmark{Metrics: map[string]float64{}}
	b.Name, b.Procs = splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %v", fields[i], line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// splitProcs strips the trailing -GOMAXPROCS suffix the testing package
// appends to every benchmark name (absent only when GOMAXPROCS is 1 and
// -cpu was not set, in which case procs is reported as 1).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
