// Command vadalint runs the repository's custom static analyzers (see
// internal/gocheck) over the given package patterns:
//
//	go run ./cmd/vadalint ./...
//
// It prints go-vet-style positioned findings and exits 1 when any
// remain unsuppressed. Findings are silenced only by a reasoned
// allowlist comment on the flagged line, the line above, or the
// enclosing function's doc comment:
//
//	//vadalint:<tag> <reason>
//
// Flags:
//
//	-list             print the analyzer suite and exit
//	-only name[,name] run only the named analyzers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gocheck"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range gocheck.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := gocheck.Analyzers
	if *only != "" {
		byName := make(map[string]*gocheck.Analyzer)
		for _, a := range gocheck.Analyzers {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "vadalint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := gocheck.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vadalint: %v\n", err)
		os.Exit(2)
	}
	diags := gocheck.Check(pkgs, suite)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vadalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
