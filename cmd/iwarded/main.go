// Command iwarded emits iWarded synthetic warded scenarios (paper
// Sec. 6.1): the program to stdout and, optionally, the EDB to CSV files.
//
// Usage:
//
//	iwarded -scenario synthB -facts 1000 [-data DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen/iwarded"
	"repro/vadalog"
)

func main() {
	name := flag.String("scenario", "synthA", "synthA..synthH")
	facts := flag.Int("facts", 1000, "facts per EDB relation")
	blocks := flag.Int("blocks", 1, "independent scenario copies")
	atoms := flag.Int("atoms", 2, "body atoms in join rules")
	arity := flag.Int("arity", 2, "predicate arity")
	dataDir := flag.String("data", "", "write EDB CSVs into this directory")
	flag.Parse()

	cfg, ok := iwarded.Scenario(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "iwarded: unknown scenario %q\n", *name)
		os.Exit(2)
	}
	cfg.FactsPerRel = *facts
	cfg.Blocks = *blocks
	cfg.ExtraBodyAtoms = *atoms - 2
	cfg.Arity = *arity
	g, err := iwarded.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iwarded:", err)
		os.Exit(1)
	}
	fmt.Print(g.Source)

	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iwarded:", err)
			os.Exit(1)
		}
		byPred := map[string][]vadalog.Fact{}
		for _, f := range g.Facts {
			byPred[f.Pred] = append(byPred[f.Pred], f)
		}
		for pred, fs := range byPred {
			path := filepath.Join(*dataDir, pred+".csv")
			if err := vadalog.WriteCSV(path, fs); err != nil {
				fmt.Fprintln(os.Stderr, "iwarded:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "iwarded: wrote %s (%d facts)\n", path, len(fs))
		}
	}
}
