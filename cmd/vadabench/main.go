// Command vadabench regenerates the paper's evaluation tables (Sec. 6):
// one table per figure, printed in aligned text. The -scale flag shrinks
// the paper's instance sizes (1.0 = paper scale; the default 0.02 runs
// the whole suite in minutes on a laptop while preserving the shapes).
//
// Usage:
//
//	vadabench [-scale 0.02] [-only Fig5a,Fig7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of the paper's instance sizes")
	only := flag.String("only", "", "comma-separated figure IDs (default: all)")
	flag.Parse()

	type gen struct {
		id string
		fn func(float64) (*experiments.Table, error)
	}
	gens := []gen{
		{"Fig6", func(float64) (*experiments.Table, error) { return experiments.Figure6() }},
		{"Fig5a", experiments.Figure5a},
		{"Fig5b", experiments.Figure5b},
		{"Fig5c", experiments.Figure5c},
		{"Fig5d", experiments.Figure5d},
		{"Fig5e", experiments.Figure5e},
		{"Fig5f", experiments.Figure5f},
		{"Fig5g", experiments.Figure5g},
		{"Fig5h", experiments.Figure5h},
		{"Fig5i", experiments.Figure5i},
		{"Fig7", experiments.Figure7},
		{"Fig8", experiments.Figure8},
		{"Ablations", experiments.Ablations},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, g := range gens {
		if len(want) > 0 && !want[g.id] {
			continue
		}
		tb, err := g.fn(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vadabench: %s: %v\n", g.id, err)
			os.Exit(1)
		}
		fmt.Println(tb)
	}
}
