// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (Sec. 6). Each benchmark maps to one figure; the
// helper functions live in internal/experiments, shared with the
// cmd/vadabench CLI that prints the full tables.
//
// Instance sizes are scaled by REPRO_BENCH_SCALE (fraction of the paper's
// sizes, default 0.01) so `go test -bench=.` completes in minutes; raise
// it to approach paper scale.
package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen/dbpedia"
	"repro/internal/gen/doctors"
	"repro/internal/gen/graphs"
	"repro/internal/gen/ibench"
	"repro/internal/gen/iwarded"
	"repro/internal/gen/lubm"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/vadalog"
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.01
}

// benchNoPlan reports whether REPRO_BENCH_NOPLAN asked for the
// planner-off ablation run (the before/after switch for BENCH records).
func benchNoPlan() bool { return os.Getenv("REPRO_BENCH_NOPLAN") != "" }

// runOnce executes one reasoning task and reports facts/sec-style metrics.
func runOnce(b *testing.B, src string, facts []ast.Fact, outPred string, opts *vadalog.Options) {
	b.Helper()
	if benchNoPlan() {
		o := vadalog.Options{}
		if opts != nil {
			o = *opts
		}
		o.DisablePlanner = true
		opts = &o
	}
	prog, err := vadalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := vadalog.NewSession(prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	sess.Load(facts...)
	if err := sess.Run(); err != nil {
		b.Fatal(err)
	}
	if outPred != "" {
		b.ReportMetric(float64(len(sess.Output(outPred))), "output-facts")
	}
	b.ReportMetric(float64(sess.Derivations()), "derived-facts")
}

// BenchmarkFig5a_IWarded reproduces Fig. 5(a): reasoning time for the
// eight iWarded scenarios.
func BenchmarkFig5a_IWarded(b *testing.B) {
	facts := int(1000 * benchScale() * 10) // paper runs ~1000 facts/rel
	if facts < 40 {
		facts = 40
	}
	for _, cfg := range iwarded.Scenarios() {
		cfg := cfg
		cfg.FactsPerRel = facts
		b.Run(cfg.Name, func(b *testing.B) {
			g, err := iwarded.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce(b, g.Source, g.Facts, "", nil)
			}
		})
	}
}

// BenchmarkFig5b_IBench reproduces Fig. 5(b): STB-128 and ONT-256 under
// the Vadalog strategy and the chase-system baseline regimes.
func BenchmarkFig5b_IBench(b *testing.B) {
	for _, cfg := range []ibench.Config{ibench.STB128(), ibench.ONT256()} {
		cfg := cfg
		cfg.FactsPerSource = int(float64(cfg.FactsPerSource) * benchScale() * 5)
		if cfg.FactsPerSource < 20 {
			cfg.FactsPerSource = 20
		}
		g := ibench.Generate(cfg)
		for _, sys := range []struct {
			name string
			opts vadalog.Options
		}{
			{"vadalog", vadalog.Options{}},
			{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 4_000_000}},
			{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 4_000_000}},
		} {
			sys := sys
			b.Run(cfg.Name+"/"+sys.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// One representative query per iteration (q0); the full
					// mix runs in cmd/vadabench.
					runOnce(b, g.Source+g.Queries[0], g.Facts, "ans0", &sys.opts)
				}
			})
		}
	}
}

// BenchmarkFig5c_PSC reproduces Fig. 5(c) (PSC series) incl. the
// relational bulk comparator.
func BenchmarkFig5c_PSC(b *testing.B) {
	companies := int(67_000 * benchScale())
	if companies < 500 {
		companies = 500
	}
	for _, persons := range []int{1_000, 10_000, 100_000} {
		p := int(float64(persons) * benchScale() * 10)
		if p < 100 {
			p = 100
		}
		data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: p,
			KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
		b.Run(fmt.Sprintf("vadalog/persons=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, dbpedia.PSCProgram, data.All(), "psc", nil)
			}
		})
		b.Run(fmt.Sprintf("bulk-sql/persons=%d", p), func(b *testing.B) {
			prog := parser.MustParse(dbpedia.PSCProgram)
			for i := 0; i < b.N; i++ {
				be, err := baseline.NewBulkEngine(prog)
				if err != nil {
					b.Fatal(err)
				}
				if err := be.Run(data.All()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5c_AllPSC reproduces Fig. 5(c) (AllPSC series with munion).
func BenchmarkFig5c_AllPSC(b *testing.B) {
	companies := int(67_000 * benchScale())
	if companies < 500 {
		companies = 500
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 4,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	for i := 0; i < b.N; i++ {
		runOnce(b, dbpedia.AllPSCProgram, data.All(), "pscSet", nil)
	}
}

// BenchmarkFig5d_SpecStrongLinks reproduces Fig. 5(d), query flavour.
func BenchmarkFig5d_SpecStrongLinks(b *testing.B) {
	companies := int(67_000 * benchScale())
	if companies < 300 {
		companies = 300
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 3,
		KeyPersonRate: 1.0, ControlRate: 0.35, Seed: 13})
	for i := 0; i < b.N; i++ {
		runOnce(b, dbpedia.SpecStrongLinksProgram(0, 1), data.All(), "strongLink", nil)
	}
}

// BenchmarkFig5d_AllStrongLinks reproduces Fig. 5(d), all-pairs flavour.
func BenchmarkFig5d_AllStrongLinks(b *testing.B) {
	companies := int(67_000 * benchScale())
	if companies < 300 {
		companies = 300
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 3,
		KeyPersonRate: 1.0, ControlRate: 0.35, Seed: 13})
	for i := 0; i < b.N; i++ {
		runOnce(b, dbpedia.StrongLinksProgram(3), data.All(), "strongLink", nil)
	}
}

// BenchmarkFig5e_AllReal / QueryReal reproduce Fig. 5(e).
func BenchmarkFig5e_AllReal(b *testing.B) {
	n := int(50_000 * benchScale())
	if n < 100 {
		n = 100
	}
	g := graphs.RealLike(n, 42)
	facts := g.OwnFacts()
	for i := 0; i < b.N; i++ {
		runOnce(b, graphs.ControlProgram, facts, "control", nil)
	}
}

func BenchmarkFig5e_QueryReal(b *testing.B) {
	n := int(50_000 * benchScale())
	if n < 100 {
		n = 100
	}
	g := graphs.RealLike(n, 42)
	facts := g.OwnFacts()
	for i := 0; i < b.N; i++ {
		runOnce(b, graphs.QueryControlProgram(i%g.N), facts, "control", nil)
	}
}

// BenchmarkFig5f_AllRand / QueryRand reproduce Fig. 5(f).
func BenchmarkFig5f_AllRand(b *testing.B) {
	n := int(1_000_000 * benchScale() / 5)
	if n < 100 {
		n = 100
	}
	g := graphs.ScaleFree(n, graphs.PaperParams(), 42)
	facts := g.OwnFacts()
	for i := 0; i < b.N; i++ {
		runOnce(b, graphs.ControlProgram, facts, "control", nil)
	}
}

func BenchmarkFig5f_QueryRand(b *testing.B) {
	n := int(1_000_000 * benchScale() / 5)
	if n < 100 {
		n = 100
	}
	g := graphs.ScaleFree(n, graphs.PaperParams(), 42)
	facts := g.OwnFacts()
	for i := 0; i < b.N; i++ {
		runOnce(b, graphs.QueryControlProgram(i%g.N), facts, "control", nil)
	}
}

// BenchmarkFig5g_Doctors reproduces Fig. 5(g) across the three regimes.
func BenchmarkFig5g_Doctors(b *testing.B) {
	benchDoctors(b, doctors.Program)
}

// BenchmarkFig5h_DoctorsFD reproduces Fig. 5(h) (with EGDs).
func BenchmarkFig5h_DoctorsFD(b *testing.B) {
	benchDoctors(b, doctors.FDProgram)
}

func benchDoctors(b *testing.B, mapping string) {
	n := int(100_000 * benchScale())
	if n < 500 {
		n = 500
	}
	facts := doctors.Generate(n, 5)
	q := doctors.Queries()[5] // the 3-way join query
	for _, sys := range []struct {
		name string
		opts vadalog.Options
	}{
		{"vadalog", vadalog.Options{}},
		{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 6_000_000}},
		{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 6_000_000}},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, mapping+q, facts, "q5", &sys.opts)
			}
		})
	}
}

// BenchmarkFig5i_LUBM reproduces Fig. 5(i).
func BenchmarkFig5i_LUBM(b *testing.B) {
	unis := int(25 * benchScale() * 4)
	if unis < 1 {
		unis = 1
	}
	facts := lubm.Generate(lubm.Config{Universities: unis, Seed: 3})
	q := lubm.Queries()[8] // Q9: the triangular join
	for _, sys := range []struct {
		name string
		opts vadalog.Options
	}{
		{"vadalog", vadalog.Options{}},
		{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 8_000_000}},
		{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 8_000_000}},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, lubm.Ontology+q, facts, "q9", &sys.opts)
			}
		})
	}
}

// BenchmarkFig7_TerminationStrategy reproduces Fig. 7: the full strategy
// (guide structures) vs the trivial exhaustive isomorphism check on
// AllPSC.
func BenchmarkFig7_TerminationStrategy(b *testing.B) {
	companies := int(67_000 * benchScale())
	if companies < 500 {
		companies = 500
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 6,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.AllPSCProgram, data.All(), "pscSet", nil)
		}
	})
	b.Run("trivial", func(b *testing.B) {
		opts := vadalog.Options{Policy: vadalog.PolicyTrivialIso}
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.AllPSCProgram, data.All(), "pscSet", &opts)
		}
	})
}

// BenchmarkFig8a_DbSize .. Fig8d_Arity reproduce the scaling studies of
// Fig. 8 over SynthB.
func BenchmarkFig8a_DbSize(b *testing.B) {
	base, _ := iwarded.Scenario("synthB")
	if base.EDBRelations == 0 {
		base.EDBRelations = 4
	}
	for _, facts := range []int{10_000, 50_000, 100_000} {
		f := int(float64(facts) * benchScale() * 5)
		if f < 200 {
			f = 200
		}
		cfg := base
		cfg.FactsPerRel = f / cfg.EDBRelations
		g, err := iwarded.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprint(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, g.Source, g.Facts, "", nil)
			}
		})
	}
}

func BenchmarkFig8b_RuleCount(b *testing.B) {
	base, _ := iwarded.Scenario("synthB")
	for _, blocks := range []int{1, 2, 5, 10} {
		cfg := base
		cfg.FactsPerRel = int(250 * benchScale() * 10)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.Blocks = blocks
		g, err := iwarded.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rules=%d", blocks*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, g.Source, g.Facts, "", nil)
			}
		})
	}
}

func BenchmarkFig8c_AtomCount(b *testing.B) {
	base, _ := iwarded.Scenario("synthB")
	for _, atoms := range []int{2, 4, 8, 16} {
		cfg := base
		cfg.FactsPerRel = int(250 * benchScale() * 10)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.ExtraBodyAtoms = atoms - 2
		g, err := iwarded.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("atoms=%d", atoms), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, g.Source, g.Facts, "", nil)
			}
		})
	}
}

func BenchmarkFig8d_Arity(b *testing.B) {
	base, _ := iwarded.Scenario("synthB")
	for _, arity := range []int{3, 6, 12, 24} {
		cfg := base
		cfg.FactsPerRel = int(250 * benchScale() * 10)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.Arity = arity
		g, err := iwarded.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, g.Source, g.Facts, "", nil)
			}
		})
	}
}

// BenchmarkAblation_SkewJoin isolates the cost-based join planner on a
// skewed join chain: src(X,K), wide(X,W), narrow(W,Z) -> out(K,Z), where
// wide fans out 1000 rows per X and narrow holds one row per X. The
// static schedule's bound-count ordering ties wide against narrow and the
// source-order tie-break enumerates the wide side first (1000-row
// intermediates per delta, 500-row src buckets per wide delta); the
// planner's distinct-ID estimates join the narrow side first and the
// intermediates collapse to ~1 row. Same bytes either way — only the
// enumeration order changes.
func BenchmarkAblation_SkewJoin(b *testing.B) {
	const (
		xs      = 10   // distinct X values
		fanout  = 1000 // wide rows per X
		srcPerX = 500  // src rows per X
	)
	src := `
		src(X,K), wide(X,W), narrow(W,Z) -> out(K,Z).
		@output("out").
	`
	var facts []ast.Fact
	for x := 0; x < xs; x++ {
		for k := 0; k < srcPerX; k++ {
			facts = append(facts, ast.NewFact("src", term.Int(int64(x)), term.Int(int64(x*srcPerX+k))))
		}
		for j := 0; j < fanout; j++ {
			facts = append(facts, ast.NewFact("wide", term.Int(int64(x)), term.Int(int64(x*fanout+j))))
		}
		// One narrow row per X, keyed on a W the wide side contains.
		facts = append(facts, ast.NewFact("narrow", term.Int(int64(x*fanout)), term.Int(int64(x+1))))
	}
	for _, eng := range []struct {
		name string
		eng  vadalog.Engine
	}{{"pipeline", vadalog.EnginePipeline}, {"chase", vadalog.EngineChase}} {
		for _, plan := range []bool{true, false} {
			opts := vadalog.Options{Engine: eng.eng, DisablePlanner: !plan}
			b.Run(fmt.Sprintf("%s/plan=%v", eng.name, plan), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runOnce(b, src, facts, "out", &opts)
				}
			})
		}
	}
}

// BenchmarkAblation_DynamicIndex isolates the slot machine join's dynamic
// indexing.
func BenchmarkAblation_DynamicIndex(b *testing.B) {
	companies := int(20_000 * benchScale())
	if companies < 300 {
		companies = 300
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 4,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.PSCProgram, data.All(), "psc", nil)
		}
	})
	b.Run("off", func(b *testing.B) {
		opts := vadalog.Options{DisableDynamicIndex: true}
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.PSCProgram, data.All(), "psc", &opts)
		}
	})
}

// BenchmarkAblation_Pruning isolates the lifted linear forest (horizontal
// pruning).
func BenchmarkAblation_Pruning(b *testing.B) {
	cfg, _ := iwarded.Scenario("synthF") // null-generating recursion
	cfg.FactsPerRel = int(1000 * benchScale() * 10)
	if cfg.FactsPerRel < 40 {
		cfg.FactsPerRel = 40
	}
	g, err := iwarded.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("summary-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, g.Source, g.Facts, "", nil)
		}
	})
	b.Run("summary-off", func(b *testing.B) {
		opts := vadalog.Options{Policy: vadalog.PolicyNoSummary}
		for i := 0; i < b.N; i++ {
			runOnce(b, g.Source, g.Facts, "", &opts)
		}
	})
}

// BenchmarkAblation_Engine compares the streaming pipeline against the
// reference chase on the same task.
func BenchmarkAblation_Engine(b *testing.B) {
	companies := int(20_000 * benchScale())
	if companies < 300 {
		companies = 300
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 4,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.PSCProgram, data.All(), "psc", nil)
		}
	})
	b.Run("chase", func(b *testing.B) {
		opts := vadalog.Options{Engine: vadalog.EngineChase}
		for i := 0; i < b.N; i++ {
			runOnce(b, dbpedia.PSCProgram, data.All(), "psc", &opts)
		}
	})
}

// BenchmarkCompileOnceVsPerQuery measures the amortized per-query cost of
// sharing one compiled Reasoner across requests versus rebuilding a
// Session (wardedness analysis + harmful-join rewriting + rule
// compilation + plan construction) for every query — the serving scenario
// the Compile/Query API exists for — on a rule-heavy iWarded scenario
// with a small per-request fact set.
func BenchmarkCompileOnceVsPerQuery(b *testing.B) {
	cfg, ok := iwarded.Scenario("synthA")
	if !ok {
		b.Fatal("synthA scenario missing")
	}
	cfg.FactsPerRel = 5
	g, err := iwarded.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog := vadalog.MustParse(g.Source)
	b.Run("shared-reasoner", func(b *testing.B) {
		r, err := vadalog.Compile(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Query(context.Background(), g.Facts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-per-query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := vadalog.NewSession(prog, nil)
			if err != nil {
				b.Fatal(err)
			}
			sess.Load(g.Facts...)
			if err := sess.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMicroInsert measures per-fact insert cost (interning, hashed
// duplicate check, tuple append) on a fresh relation per batch.
func BenchmarkMicroInsert(b *testing.B) {
	const n = 10_000
	facts := make([]ast.Fact, n)
	for i := range facts {
		facts[i] = ast.NewFact("p",
			term.String(fmt.Sprintf("c%d", i%997)),
			term.Int(int64(i)),
			term.Int(int64(i%131)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := storage.NewDatabase()
		rel := db.Rel("p", 3)
		for _, f := range facts {
			rel.Insert(&core.FactMeta{Fact: f})
		}
		if rel.Len() != n {
			b.Fatalf("len: %d", rel.Len())
		}
	}
	b.ReportMetric(float64(n), "facts/op")
}

// BenchmarkMicroIndexedProbe measures one indexed lookup through the
// value boundary (Lookup: IDOf translation + hashed probe). The dynamic
// index is fully built before timing; the acceptance target is ≥2× fewer
// allocations per probe than the former string-key path (which allocated
// a rendered key per probe; this path allocates none).
func BenchmarkMicroIndexedProbe(b *testing.B) {
	const n = 10_000
	db := storage.NewDatabase()
	rel := db.Rel("p", 3)
	for i := 0; i < n; i++ {
		rel.Insert(&core.FactMeta{Fact: ast.NewFact("p",
			term.String(fmt.Sprintf("c%d", i%997)),
			term.Int(int64(i)),
			term.Int(int64(i%131)))})
	}
	probe := []term.Value{term.String("c123"), {}, {}}
	rel.Lookup(1, probe) // build the index outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		probe[0] = term.String(probeNames[i%len(probeNames)])
		total += len(rel.Lookup(1, probe))
	}
	if total == 0 {
		b.Fatal("probes matched nothing")
	}
}

var probeNames = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = fmt.Sprintf("c%d", i*13%997)
	}
	return out
}()

// BenchmarkMicroIndexedProbeIDs measures the pure ID-space probe the
// matcher's hot loop uses (no value translation at all).
func BenchmarkMicroIndexedProbeIDs(b *testing.B) {
	const n = 10_000
	db := storage.NewDatabase()
	rel := db.Rel("p", 3)
	for i := 0; i < n; i++ {
		rel.Insert(&core.FactMeta{Fact: ast.NewFact("p",
			term.String(fmt.Sprintf("c%d", i%997)),
			term.Int(int64(i)),
			term.Int(int64(i%131)))})
	}
	in := db.Interner()
	ids := make([]uint32, len(probeNames))
	for i, s := range probeNames {
		id, ok := in.IDOf(term.String(s))
		if !ok {
			b.Fatalf("probe constant %q not interned", s)
		}
		ids[i] = id
	}
	probe := make([]uint32, 3)
	probe[0] = ids[0]
	rel.LookupIDs(1, probe) // build the index outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		probe[0] = ids[i%len(ids)]
		total += len(rel.LookupIDs(1, probe))
	}
	if total == 0 {
		b.Fatal("probes matched nothing")
	}
}

// BenchmarkScenario_CompanyControl runs the full companycontrol example
// (Example 2, monotonic msum over a scale-free ownership graph) end to
// end, allocations reported.
func BenchmarkScenario_CompanyControl(b *testing.B) {
	n := int(50_000 * benchScale())
	if n < 200 {
		n = 200
	}
	g := graphs.RealLike(n, 42)
	facts := g.OwnFacts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, graphs.ControlProgram, facts, "control", nil)
	}
}

// BenchmarkAggregate_Supersession measures the aggregate-heavy scenarios
// under the supersession layer (PR 3): companycontrol's recursive msum
// over a scale-free ownership graph and AllPSC's munion over the DBpedia
// shape. Superseded intermediates are replaced in place, so live-facts
// (and with it retained bytes and insert work) stays at one fact per
// aggregate group instead of one per improvement.
func BenchmarkAggregate_Supersession(b *testing.B) {
	n := int(50_000 * benchScale())
	if n < 200 {
		n = 200
	}
	g := graphs.RealLike(n, 42)
	companies := int(20_000 * benchScale())
	if companies < 300 {
		companies = 300
	}
	psc := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 4,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	for _, sc := range []struct {
		name  string
		src   string
		facts []ast.Fact
	}{
		{"companycontrol-msum", graphs.ControlProgram, g.OwnFacts()},
		{"allpsc-munion", dbpedia.AllPSCProgram, psc.All()},
	} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			prog := parser.MustParse(sc.src)
			c, err := pipeline.Compile(prog, pipeline.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var live, rows, derived int
			for i := 0; i < b.N; i++ {
				s := c.NewSession()
				if err := s.Run(context.Background(), sc.facts); err != nil {
					b.Fatal(err)
				}
				live, rows, derived = s.DB().LiveFacts(), s.DB().TotalFacts(), s.Derivations()
			}
			b.ReportMetric(float64(live), "live-facts")
			b.ReportMetric(float64(rows), "stored-rows")
			b.ReportMetric(float64(derived), "derived-facts")
		})
	}
}

// BenchmarkScenario_IWarded runs one representative iWarded scenario
// (synthA) end to end, allocations reported. The pipeline sub-benchmark
// continues the historical compile-per-run trajectory; the chase
// sub-benchmark compiles once and queries per iteration with the batched
// parallel chase, whose worker count defaults to GOMAXPROCS — so
// `-cpu 1,4` compares 1 worker against 4 on identical work (the final
// database is byte-identical by construction).
func BenchmarkScenario_IWarded(b *testing.B) {
	cfg, ok := iwarded.Scenario("synthA")
	if !ok {
		b.Fatal("synthA scenario missing")
	}
	cfg.FactsPerRel = int(1000 * benchScale() * 10)
	if cfg.FactsPerRel < 40 {
		cfg.FactsPerRel = 40
	}
	g, err := iwarded.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, g.Source, g.Facts, "", nil)
		}
	})
	b.Run("chase", func(b *testing.B) {
		r, err := vadalog.Compile(vadalog.MustParse(g.Source),
			&vadalog.Options{Engine: vadalog.EngineChase, DisablePlanner: benchNoPlan()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var derived int
		for i := 0; i < b.N; i++ {
			res, err := r.Query(context.Background(), g.Facts)
			if err != nil {
				b.Fatal(err)
			}
			derived = res.Derivations()
		}
		b.ReportMetric(float64(derived), "derived-facts")
	})
}

// BenchmarkStreamingLoad compares the record-manager load paths (PR 5):
// "eager" materializes the whole CSV into a fact slice before loading
// (the historical ReadAll path, still available as ReadCSV), "chunked"
// streams the @bind'ed cursor chunk by chunk into storage, and
// "chunked-qbind" additionally pushes a selection into the csv driver so
// filtered rows never surface to the engine.
func BenchmarkStreamingLoad(b *testing.B) {
	n := int(50000 * benchScale() * 10)
	if n < 2000 {
		n = 2000
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "edge.csv")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "n%d,n%d,%d\n", i, (i+1)%n, i%100)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	rules := `
		edge(X,Y,W), W > 90 -> hot(X,Y).
		@output("hot").
	`
	plain := vadalog.MustCompile(vadalog.MustParse(rules), nil)
	bound := vadalog.MustCompile(vadalog.MustParse(
		rules+fmt.Sprintf("@bind(%q,%q,%q).", "edge", "csv", path)), nil)
	qbound := vadalog.MustCompile(vadalog.MustParse(
		rules+fmt.Sprintf("@qbind(%q,%q,%q,%q).", "edge", "csv", path, "$3 > 90")), nil)
	var derived int
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			facts, err := vadalog.ReadCSV("edge", path)
			if err != nil {
				b.Fatal(err)
			}
			res, err := plain.Query(context.Background(), facts)
			if err != nil {
				b.Fatal(err)
			}
			derived = res.Derivations()
		}
		b.ReportMetric(float64(derived), "derived-facts")
	})
	b.Run("chunked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := bound.Query(context.Background(), nil)
			if err != nil {
				b.Fatal(err)
			}
			derived = res.Derivations()
		}
		b.ReportMetric(float64(derived), "derived-facts")
	})
	b.Run("chunked-qbind", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := qbound.Query(context.Background(), nil)
			if err != nil {
				b.Fatal(err)
			}
			derived = res.Derivations()
		}
		b.ReportMetric(float64(derived), "derived-facts")
	})
}

// BenchmarkScalingMatrix records the partitioned-admission scaling curve
// (PR 10): worker count × shard count over three admission-bound
// generator families, each wired to the million-fact range at full
// REPRO_BENCH_SCALE. Every cell runs the batched chase (the engine with
// both axes) on identical inputs, so the final database is
// byte-identical across the whole matrix and the only variables are
// match parallelism and duplicate-table partitioning. ns/op, B/op and
// allocs/op per cell feed BENCH_pr10.json via cmd/benchjson; on a
// single-core host the w=1/s=1 column is the serial overhead control.
func BenchmarkScalingMatrix(b *testing.B) {
	target := int(1_000_000 * benchScale())
	if target < 2_000 {
		target = 2_000
	}
	type scenario struct {
		name  string
		src   string
		out   string
		facts []ast.Fact
	}
	var scenarios []scenario

	// graphs: scale-free ownership, companycontrol (recursive msum). Edge
	// count ≈ 2n under PaperParams, so halve the node count.
	g := graphs.ScaleFree(target/2, graphs.PaperParams(), 42)
	scenarios = append(scenarios, scenario{"graphs", graphs.ControlProgram, "control", g.OwnFacts()})

	// iwarded: synthB split across its EDB relations.
	cfg, ok := iwarded.Scenario("synthB")
	if !ok {
		b.Fatal("synthB scenario missing")
	}
	if cfg.EDBRelations == 0 {
		cfg.EDBRelations = 4
	}
	cfg.FactsPerRel = target / cfg.EDBRelations
	iw, err := iwarded.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	scenarios = append(scenarios, scenario{"iwarded", iw.Source, "", iw.Facts})

	// lubm: universities sized off the measured facts-per-university.
	perUni := len(lubm.Generate(lubm.Config{Universities: 1, Seed: 3}))
	unis := target / perUni
	if unis < 1 {
		unis = 1
	}
	lf := lubm.Generate(lubm.Config{Universities: unis, Seed: 3})
	scenarios = append(scenarios, scenario{"lubm", lubm.Ontology + lubm.Queries()[8], "q9", lf})

	for _, sc := range scenarios {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, shards := range []int{1, 2, 8} {
				opts := vadalog.Options{Engine: vadalog.EngineChase,
					Parallelism: workers, Shards: shards}
				b.Run(fmt.Sprintf("%s/w=%d/s=%d", sc.name, workers, shards), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						runOnce(b, sc.src, sc.facts, sc.out, &opts)
					}
					b.ReportMetric(float64(len(sc.facts)), "input-facts")
				})
			}
		}
	}
}

// TestExperimentTablesSmoke regenerates two representative tables end to
// end (what cmd/vadabench prints) as a functional smoke test.
func TestExperimentTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	start := time.Now()
	tb, err := experiments.Figure5a(0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Fig5a rows: %d", len(tb.Rows))
	}
	tb, err = experiments.Figure8(0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 16 {
		t.Fatalf("Fig8 rows: %d", len(tb.Rows))
	}
	t.Logf("smoke tables in %.1fs", time.Since(start).Seconds())
}
